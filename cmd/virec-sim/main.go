// Command virec-sim runs a single near-memory simulation and prints its
// statistics. With -seeds N it becomes a multi-seed soak run: the same
// configuration is simulated N times under different data seeds, fanned
// across -parallel workers, with a per-seed summary table.
//
// Observability: -trace records a cycle-level event trace (Chrome
// trace_event JSON for chrome://tracing / Perfetto, or JSONL for scripted
// analysis), and -metrics-json exports the unified metrics registry —
// every counter, gauge and histogram of every simulated structure — as
// machine-readable JSON. Adding -metrics-every N turns the export into a
// live recording: one telemetry delta line every N cycles (the stream
// protocol virec-telemetry-check -deltas validates and the farm's SSE
// endpoint serves), closed by the final snapshot.
//
// Usage:
//
//	virec-sim -workload gather -kind virec -threads 8 -ctx 60
//	virec-sim -workload spmv -kind banked -cores 4
//	virec-sim -workload gather -trace -trace-out gather.trace.json
//	virec-sim -workload gather -metrics-json - | jq .counters
//	virec-sim -workload gather -seeds 16 -parallel 0
//	virec-sim -list
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/virec/virec/internal/harden"
	"github.com/virec/virec/internal/sim"
	"github.com/virec/virec/internal/stats"
	"github.com/virec/virec/internal/sweep"
	"github.com/virec/virec/internal/telemetry"
	"github.com/virec/virec/internal/vrmu"
	"github.com/virec/virec/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "gather", "kernel to run")
		kindName  = flag.String("kind", "virec", "core kind: banked|virec|software|prefetch-full|prefetch-exact")
		cores     = flag.Int("cores", 1, "number of near-memory processors")
		threads   = flag.Int("threads", 8, "hardware threads per core")
		iters     = flag.Int("iters", 256, "inner-loop iterations per thread")
		ctx       = flag.Int("ctx", 100, "ViReC context percentage (40-100)")
		physRegs  = flag.Int("regs", 0, "ViReC physical registers (overrides -ctx)")
		policy    = flag.String("policy", "LRC", "replacement policy: PLRU|LRU|MRT-PLRU|MRT-LRU|LRC")
		dcacheKB  = flag.Int("dcache-kb", 8, "dcache size in KB")
		dcacheLat = flag.Int("dcache-lat", 2, "dcache hit latency in cycles")
		validate  = flag.Bool("validate", true, "golden-model value checking")
		list      = flag.Bool("list", false, "list workloads and exit")
		faults    = flag.Uint64("faults", 0, "fault-injection seed (0 disables); perturbs dcache timing, never values")
		faultPlan = flag.String("fault-plan", "all", "named fault schedule: jitter|busy|storm|all")
		watchdog  = flag.Uint64("watchdog", 0, "livelock watchdog window in cycles (0 disables)")
		checkEv   = flag.Uint64("check-every", 0, "run the invariant sweep every N cycles (0 = final sweep only)")
		seed      = flag.Uint64("seed", 0, "base data seed (0 = built-in default)")
		seeds     = flag.Int("seeds", 1, "number of seeds to soak: N > 1 runs the config once per seed")
		parallel  = flag.Int("parallel", 0, "soak-run sweep workers: 0 = all CPUs, 1 = serial")

		trace    = flag.Bool("trace", false, "record a cycle-level event trace (see -trace-out/-trace-format)")
		traceOut = flag.String("trace-out", "trace.json", "trace output file")
		traceFmt = flag.String("trace-format", "chrome", "trace format: chrome (load in chrome://tracing or Perfetto) | jsonl")
		traceBuf = flag.Int("trace-buf", 1<<16, "tracer ring capacity in events (streaming flush batch size)")

		metricsJSON  = flag.String("metrics-json", "", "write the metrics-registry snapshot as JSON to this file ('-' = stdout)")
		metricsEvery = flag.Uint64("metrics-every", 0, "with -metrics-json: stream a telemetry delta line every N cycles (output becomes JSONL: deltas, then the final snapshot)")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range workloads.All() {
			fmt.Printf("  %-10s [%s] %s (active regs: %d)\n",
				w.Name, w.Suite, w.Description, len(w.ActiveRegs()))
		}
		return
	}

	w, ok := workloads.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "virec-sim: unknown workload %q (try -list)\n", *workload)
		os.Exit(2)
	}
	kind, err := sim.ParseCoreKind(*kindName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "virec-sim:", err)
		os.Exit(2)
	}
	pol, err := vrmu.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "virec-sim:", err)
		os.Exit(2)
	}

	cfg := sim.Config{
		Kind:             kind,
		Cores:            *cores,
		ThreadsPerCore:   *threads,
		Workload:         w,
		Iters:            *iters,
		Seed:             *seed,
		ContextPct:       *ctx,
		PhysRegs:         *physRegs,
		Policy:           pol,
		DCacheBytes:      *dcacheKB * 1024,
		DCacheHitLatency: *dcacheLat,
		ValidateValues:   *validate,
		Harden: harden.Config{
			FaultSeed:      *faults,
			WatchdogWindow: *watchdog,
			CheckEvery:     *checkEv,
		},
	}
	if *faults != 0 {
		plan, ok := harden.PlanByName(*faultPlan)
		if !ok {
			fmt.Fprintf(os.Stderr, "virec-sim: unknown fault plan %q (try jitter|busy|storm|all)\n", *faultPlan)
			os.Exit(2)
		}
		cfg.Harden.Plan = plan
	}

	if *seeds > 1 {
		if *trace {
			fmt.Fprintln(os.Stderr, "virec-sim: -trace is a single-run flag; drop it or use -seeds 1")
			os.Exit(2)
		}
		soak(cfg, *seeds, *parallel, kind, w, *metricsJSON)
		return
	}

	// Trace export: the tracer streams full ring batches into the chosen
	// encoder, so a run of any length traces in bounded memory.
	var traceFile *os.File
	var chromeW *telemetry.ChromeWriter
	var jsonlW *bufio.Writer
	if *trace {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "virec-sim:", err)
			os.Exit(1)
		}
		cfg.TraceEvents = *traceBuf
		switch *traceFmt {
		case "chrome":
			chromeW = telemetry.NewChromeWriter(traceFile)
			cfg.TraceSink = func(evs []telemetry.Event) { _ = chromeW.Write(evs) }
		case "jsonl":
			jsonlW = bufio.NewWriter(traceFile)
			cfg.TraceSink = func(evs []telemetry.Event) { _ = telemetry.WriteEventsJSONL(jsonlW, evs) }
		default:
			fmt.Fprintf(os.Stderr, "virec-sim: unknown trace format %q (try chrome|jsonl)\n", *traceFmt)
			os.Exit(2)
		}
	}

	// Periodic metrics stream to the -metrics-json destination as delta
	// JSONL (the telemetry stream protocol: a reset head, then changed
	// metrics only); the final full snapshot goes there too as the last
	// line, distinguished by the absence of a "seq" key. The recording is
	// exactly what virec-telemetry-check -deltas validates.
	metricsW, metricsClose, err := openOut(*metricsJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "virec-sim:", err)
		os.Exit(1)
	}
	if *metricsEvery > 0 {
		if metricsW == nil {
			fmt.Fprintln(os.Stderr, "virec-sim: -metrics-every needs -metrics-json")
			os.Exit(2)
		}
		enc := json.NewEncoder(metricsW)
		cfg.HeartbeatEvery = *metricsEvery
		cfg.OnHeartbeat = func(d *telemetry.Delta) { _ = enc.Encode(d) }
	}

	system, err := sim.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "virec-sim:", err)
		os.Exit(1)
	}
	res, err := system.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "virec-sim:", err)
		os.Exit(1)
	}

	if *trace {
		var ferr error
		if chromeW != nil {
			ferr = chromeW.Close(res.Cycles)
		} else {
			ferr = jsonlW.Flush()
		}
		if cerr := traceFile.Close(); ferr == nil {
			ferr = cerr
		}
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "virec-sim: writing trace:", ferr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "virec-sim: wrote %d trace events to %s (%s)\n",
			system.Tracer.Total(), *traceOut, *traceFmt)
	}
	if metricsW != nil {
		if err := writeMetrics(metricsW, res.Metrics, *metricsEvery > 0); err == nil {
			err = metricsClose()
		} else {
			metricsClose()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "virec-sim: writing metrics:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("%s on %s: %d cores x %d threads x %d iters\n",
		kind, w.Name, *cores, *threads, *iters)
	fmt.Printf("cycles: %d   insts: %d   IPC: %.4f\n", res.Cycles, res.Insts, res.IPC)

	t := stats.NewTable("core", "insts", "ipc", "switches", "reg_stalls", "fwd_stalls", "dcache_hit%")
	for i, cs := range res.CoreStats {
		t.AddRow(i, cs.Insts, cs.IPC(), cs.ContextSwitches,
			cs.DecodeRegStalls, cs.DecodeFwdStalls,
			100*res.CacheStats[i].HitRate())
	}
	fmt.Print(t.String())

	if len(res.TagStats) > 0 {
		rt := stats.NewTable("core", "rf_hit%", "evictions", "dirty_evicts", "c_resets")
		for i, ts := range res.TagStats {
			rt.AddRow(i, 100*ts.HitRate(), ts.Evictions, ts.DirtyEvict, ts.CResets)
		}
		fmt.Print(rt.String())
	}
	if len(system.Injectors) > 0 {
		it := stats.NewTable("core", "jittered", "jitter_cyc", "busy_bursts", "busy_rejects", "storms", "storm_fetches")
		for i, inj := range system.Injectors {
			st := inj.Stats
			it.AddRow(i, st.Jittered, st.JitterCycles, st.BusyBursts, st.BusyRejects, st.Storms, st.StormFetches)
		}
		fmt.Print(it.String())
	}
	if res.DRAMStats != nil {
		fmt.Printf("dram: %d reads, %d writes, avg read latency %.1f cycles, row hits %d / misses %d / conflicts %d\n",
			res.DRAMStats.Reads, res.DRAMStats.Writes, res.DRAMStats.AvgReadLatency(),
			res.DRAMStats.RowHits, res.DRAMStats.RowMisses, res.DRAMStats.RowConflicts)
	}
	fmt.Println("verification: all threads match the golden model")
}

// openOut resolves a -metrics-json destination: "" = disabled, "-" =
// stdout (not closed), anything else = created file.
func openOut(path string) (io.Writer, func() error, error) {
	switch path {
	case "":
		return nil, nil, nil
	case "-":
		return os.Stdout, func() error { return nil }, nil
	default:
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		return f, f.Close, nil
	}
}

// writeMetrics writes the final snapshot: a compact line when the output
// is a periodic-snapshot JSONL stream, indented JSON otherwise.
func writeMetrics(w io.Writer, snap *telemetry.Snapshot, jsonl bool) error {
	if jsonl {
		return json.NewEncoder(w).Encode(snap)
	}
	data, err := snap.MarshalIndentJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// soak runs the configuration once per seed across a sweep pool and
// prints a per-seed summary. Each run carries full value validation (when
// enabled) and the invariant sweep, so this is the CLI's stress mode:
// many deterministic runs over different data, in parallel. With
// -metrics-json the per-seed telemetry snapshots are merged (counters and
// histogram buckets add element-wise) into one aggregate document.
func soak(cfg sim.Config, n, workers int, kind sim.CoreKind, w *workloads.Spec, metricsJSON string) {
	base := cfg.Seed
	if base == 0 {
		base = 0x9e3779b97f4a7c15 // the sim package's default seed
	}
	cfgs := make([]sim.Config, n)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = base + uint64(i)
	}
	results, agg, err := sweep.SimsMerged(sweep.New(workers), cfgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "virec-sim:", err)
		os.Exit(1)
	}

	if metricsJSON != "" {
		mw, mclose, err := openOut(metricsJSON)
		if err == nil {
			err = writeMetrics(mw, agg, false)
			if cerr := mclose(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "virec-sim: writing metrics:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("%s on %s: %d seeds x %d cores x %d threads x %d iters\n",
		kind, w.Name, n, cfgs[0].Cores, cfg.ThreadsPerCore, cfg.Iters)
	t := stats.NewTable("seed", "cycles", "insts", "ipc", "switches", "rf_hit%")
	var minC, maxC uint64
	for i, res := range results {
		switches := uint64(0)
		for _, cs := range res.CoreStats {
			switches += cs.ContextSwitches
		}
		rfHit := float64(100)
		if len(res.TagStats) > 0 {
			rfHit = 100 * res.TagStats[0].HitRate()
		}
		t.AddRow(fmt.Sprintf("%#x", cfgs[i].Seed), res.Cycles, res.Insts, res.IPC, switches, rfHit)
		if i == 0 || res.Cycles < minC {
			minC = res.Cycles
		}
		if i == 0 || res.Cycles > maxC {
			maxC = res.Cycles
		}
	}
	fmt.Print(t.String())
	fmt.Printf("cycle spread: min %d, max %d (%.2f%%)\n",
		minC, maxC, 100*float64(maxC-minC)/float64(minC))
	fmt.Println("verification: all seeds match the golden model")
}
