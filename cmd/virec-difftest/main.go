// Command virec-difftest is the differential verification driver: it
// generates seeded constrained-random kernels and co-simulates each one
// in lock step against the functional interpreter across the provider ×
// policy × thread-count × fault-schedule matrix, shrinking and recording
// any divergence as a replayable artifact.
//
// Usage:
//
//	virec-difftest -n 200                 # seeds 0..199, full matrix
//	virec-difftest -seeds 500:1000       # explicit seed range
//	virec-difftest -scenarios virec/lrc/t8,banked/t4
//	virec-difftest -replay out/seed-0000000000000017.json
//	virec-difftest -n 500 -farm http://localhost:7741
//
// With -farm URL each seed becomes a job on a virec-farm server; the
// sweep aggregates the per-seed results and, on divergence, regenerates
// the kernel locally (generation is a pure function of the seed) to
// shrink and write the repro artifact.
//
// Exit status:
//
//	0  every seed clean
//	1  usage error (bad flags, bad seed range, bad scenario)
//	2  divergence found (the simulator and the reference disagree)
//	3  harness crash (a scenario failed to run, the sweep or farm
//	   errored, or a replay artifact could not be loaded)
//
// A run that sees both real divergences and harness crashes exits 2:
// a confirmed model bug outranks broken plumbing.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/virec/virec/internal/difftest"
	"github.com/virec/virec/internal/farm"
	"github.com/virec/virec/internal/sweep"
)

const (
	exitClean      = 0
	exitUsage      = 1
	exitDivergence = 2
	exitCrash      = 3
)

// isCrash reports whether a divergence records harness breakage rather
// than a genuine model/reference disagreement.
func isCrash(d *difftest.Divergence) bool {
	return d != nil && d.Kind == "run-error"
}

func main() {
	var (
		n        = flag.Int("n", 0, "check seeds 0..n-1 (shorthand for -seeds 0:n)")
		seedsStr = flag.String("seeds", "", "seed range lo:hi (hi exclusive) or a single seed")
		parallel = flag.Int("parallel", 0, "worker goroutines (default GOMAXPROCS)")
		outDir   = flag.String("out", "difftest-repros", "directory for repro artifacts")
		replay   = flag.String("replay", "", "replay a repro artifact instead of sweeping")
		scStr    = flag.String("scenarios", "", "comma-separated scenario subset (default: full matrix)")
		shrinkN  = flag.Int("shrink-attempts", 800, "max differential checks the shrinker may spend (0 disables shrinking)")
		maxCyc   = flag.Uint64("max-cycles", 0, "per-scenario cycle budget (default 20M)")
		quiet    = flag.Bool("q", false, "only print failures and the final summary")
		farmURL  = flag.String("farm", "", "run each seed as a job on this virec-farm server")
		skipMode = flag.String("skipahead", "on", "timed-model clock skip-ahead: on or off (off ticks every cycle in every scenario)")
	)
	flag.Parse()

	opts := difftest.CheckOpts{MaxCycles: *maxCyc}
	switch *skipMode {
	case "on":
	case "off":
		opts.ForceNoSkip = true
	default:
		fatalUsage(fmt.Errorf("bad -skipahead %q: want on or off", *skipMode))
	}
	if opts.ForceNoSkip && *farmURL != "" {
		fatalUsage(fmt.Errorf("-skipahead=off runs locally; it cannot be combined with -farm"))
	}
	var scenarioNames []string
	if *scStr != "" {
		for _, s := range strings.Split(*scStr, ",") {
			sc, err := difftest.ParseScenario(strings.TrimSpace(s))
			if err != nil {
				fatalUsage(err)
			}
			opts.Scenarios = append(opts.Scenarios, sc)
			scenarioNames = append(scenarioNames, strings.TrimSpace(s))
		}
	}

	if *replay != "" {
		if *farmURL != "" {
			fatalUsage(fmt.Errorf("-replay runs locally; it cannot be combined with -farm"))
		}
		os.Exit(replayArtifact(*replay, opts))
	}

	lo, hi := uint64(0), uint64(0)
	switch {
	case *seedsStr != "":
		var err error
		if lo, hi, err = parseSeeds(*seedsStr); err != nil {
			fatalUsage(err)
		}
	case *n > 0:
		hi = uint64(*n)
	default:
		fatalUsage(fmt.Errorf("nothing to do: pass -n, -seeds or -replay"))
	}

	seeds := make([]uint64, 0, hi-lo)
	for s := lo; s < hi; s++ {
		seeds = append(seeds, s)
	}
	nScenarios := len(opts.Scenarios)
	if nScenarios == 0 {
		nScenarios = len(difftest.Matrix())
	}

	var commits uint64
	divergences, crashes := 0, 0
	if *farmURL != "" {
		if !*quiet {
			fmt.Printf("difftest: %d seeds x %d scenarios via farm %s\n",
				len(seeds), nScenarios, *farmURL)
		}
		var err error
		commits, divergences, crashes, err = runOnFarm(
			*farmURL, seeds, scenarioNames, opts, *maxCyc, *shrinkN, *outDir)
		if err != nil {
			fatalCrash(err)
		}
	} else {
		if !*quiet {
			fmt.Printf("difftest: %d seeds x %d scenarios, %d workers\n",
				len(seeds), nScenarios, sweep.New(*parallel).Workers())
		}
		var err error
		commits, divergences, crashes, err = runLocal(seeds, opts, *parallel, *shrinkN, *outDir)
		if err != nil {
			fatalCrash(err)
		}
	}

	if !*quiet || divergences > 0 || crashes > 0 {
		fmt.Printf("difftest: %d seeds, %d commits compared, %d divergences, %d harness crashes\n",
			len(seeds), commits, divergences, crashes)
	}
	switch {
	case divergences > 0:
		os.Exit(exitDivergence)
	case crashes > 0:
		os.Exit(exitCrash)
	}
}

// runLocal sweeps the seeds in-process with a worker pool.
func runLocal(seeds []uint64, opts difftest.CheckOpts, parallel, shrinkN int, outDir string) (commits uint64, divergences, crashes int, err error) {
	type verdict struct {
		rep *difftest.Report
		sr  *difftest.ShrinkResult
	}
	// Each seed is independent; divergences are shrunk inside the worker
	// so the whole sweep parallelizes.
	results, err := sweep.Map(sweep.New(parallel), seeds,
		func(seed uint64, _ int) (verdict, error) {
			k := difftest.Generate(seed, difftest.GenConfigForSeed(seed))
			rep := difftest.Check(k, opts)
			v := verdict{rep: rep}
			if rep.Divergence != nil && shrinkN > 0 && !isCrash(rep.Divergence) {
				if sc, err := difftest.ParseScenario(rep.Divergence.Scenario); err == nil {
					v.sr = difftest.Shrink(k, sc, opts, shrinkN)
				}
			}
			if rep.Divergence != nil {
				reportDivergence(seed, k, rep.Divergence, v.sr, outDir)
			}
			return v, nil
		})
	if err != nil {
		return 0, 0, 0, err
	}
	for _, v := range results {
		commits += v.rep.Commits
		switch {
		case isCrash(v.rep.Divergence):
			crashes++
		case v.rep.Divergence != nil:
			divergences++
		}
	}
	return commits, divergences, crashes, nil
}

// runOnFarm submits one difftest job per seed, waits for all of them,
// and post-processes divergences locally: the kernel is regenerated from
// the seed (generation is deterministic), shrunk, and written as a repro
// artifact exactly as the in-process sweep would have done.
func runOnFarm(url string, seeds []uint64, scenarioNames []string, opts difftest.CheckOpts, maxCyc uint64, shrinkN int, outDir string) (commits uint64, divergences, crashes int, err error) {
	ctx := context.Background()
	client := farm.NewClient(url)

	ids := make([]uint64, len(seeds))
	for i, seed := range seeds {
		job, err := client.Submit(ctx, &farm.Spec{
			Kind: farm.KindDifftest,
			Difftest: &farm.DifftestSpec{
				Seed:      seed,
				Scenarios: scenarioNames,
				MaxCycles: maxCyc,
			},
		})
		if err != nil {
			return 0, 0, 0, fmt.Errorf("submitting seed %d: %w", seed, err)
		}
		ids[i] = job.ID
	}
	for i, id := range ids {
		out, _, err := client.WaitResult(ctx, id)
		if err != nil {
			// The job itself died (crash, quarantine, deadline): harness
			// trouble, not a verified divergence.
			fmt.Fprintf(os.Stderr, "difftest: seed %d: %v\n", seeds[i], err)
			crashes++
			continue
		}
		var res farm.DifftestResult
		if err := json.Unmarshal(out, &res); err != nil {
			return 0, 0, 0, fmt.Errorf("seed %d: bad farm result: %w", seeds[i], err)
		}
		commits += res.Commits
		if res.Divergence == nil {
			continue
		}
		if isCrash(res.Divergence) {
			crashes++
			fmt.Fprintf(os.Stderr, "difftest: seed %d: %v\n", seeds[i], res.Divergence)
			continue
		}
		divergences++
		k := difftest.Generate(seeds[i], difftest.GenConfigForSeed(seeds[i]))
		var sr *difftest.ShrinkResult
		if shrinkN > 0 {
			if sc, err := difftest.ParseScenario(res.Divergence.Scenario); err == nil {
				sr = difftest.Shrink(k, sc, opts, shrinkN)
			}
		}
		reportDivergence(seeds[i], k, res.Divergence, sr, outDir)
	}
	return commits, divergences, crashes, nil
}

// reportDivergence writes the repro artifact and a stderr notice for one
// diverged seed.
func reportDivergence(seed uint64, k *difftest.Kernel, d *difftest.Divergence, sr *difftest.ShrinkResult, outDir string) {
	sc, _ := difftest.ParseScenario(d.Scenario)
	art := difftest.NewArtifact(k, sc, d, sr)
	if path, werr := art.Write(outDir); werr == nil {
		fmt.Fprintf(os.Stderr, "difftest: seed %d: %v\n  repro: %s\n", seed, d, path)
	} else {
		fmt.Fprintf(os.Stderr, "difftest: seed %d: %v\n  (artifact write failed: %v)\n", seed, d, werr)
	}
}

func replayArtifact(path string, opts difftest.CheckOpts) int {
	art, err := difftest.LoadArtifact(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "virec-difftest:", err)
		return exitCrash
	}
	fmt.Printf("replaying seed %d under %s\n", art.Seed, art.Scenario)
	rep, err := art.Replay(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "virec-difftest:", err)
		return exitCrash
	}
	switch {
	case isCrash(rep.Divergence):
		fmt.Printf("harness crash: %v\n", rep.Divergence)
		return exitCrash
	case rep.Divergence != nil:
		fmt.Printf("reproduced: %v\n", rep.Divergence)
		return exitDivergence
	}
	fmt.Printf("clean: %d commits matched (the recorded divergence did not reproduce)\n", rep.Commits)
	return exitClean
}

func parseSeeds(s string) (lo, hi uint64, err error) {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		if lo, err = strconv.ParseUint(s[:i], 0, 64); err != nil {
			return 0, 0, fmt.Errorf("bad seed range %q: %v", s, err)
		}
		if hi, err = strconv.ParseUint(s[i+1:], 0, 64); err != nil {
			return 0, 0, fmt.Errorf("bad seed range %q: %v", s, err)
		}
		if hi <= lo {
			return 0, 0, fmt.Errorf("empty seed range %q", s)
		}
		return lo, hi, nil
	}
	if lo, err = strconv.ParseUint(s, 0, 64); err != nil {
		return 0, 0, fmt.Errorf("bad seed %q: %v", s, err)
	}
	return lo, lo + 1, nil
}

// fatalUsage reports a command-line problem (exit 1).
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "virec-difftest:", err)
	os.Exit(exitUsage)
}

// fatalCrash reports harness breakage (exit 3): the sweep or the farm
// failed in a way that is neither clean nor a verified divergence.
func fatalCrash(err error) {
	fmt.Fprintln(os.Stderr, "virec-difftest:", err)
	os.Exit(exitCrash)
}
