// Command virec-difftest is the differential verification driver: it
// generates seeded constrained-random kernels and co-simulates each one
// in lock step against the functional interpreter across the provider ×
// policy × thread-count × fault-schedule matrix, shrinking and recording
// any divergence as a replayable artifact.
//
// Usage:
//
//	virec-difftest -n 200                 # seeds 0..199, full matrix
//	virec-difftest -seeds 500:1000       # explicit seed range
//	virec-difftest -scenarios virec/lrc/t8,banked/t4
//	virec-difftest -replay out/seed-0000000000000017.json
//
// Exit status: 0 all seeds clean, 1 divergence found, 2 usage/run error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/virec/virec/internal/difftest"
	"github.com/virec/virec/internal/sweep"
)

func main() {
	var (
		n        = flag.Int("n", 0, "check seeds 0..n-1 (shorthand for -seeds 0:n)")
		seedsStr = flag.String("seeds", "", "seed range lo:hi (hi exclusive) or a single seed")
		parallel = flag.Int("parallel", 0, "worker goroutines (default GOMAXPROCS)")
		outDir   = flag.String("out", "difftest-repros", "directory for repro artifacts")
		replay   = flag.String("replay", "", "replay a repro artifact instead of sweeping")
		scStr    = flag.String("scenarios", "", "comma-separated scenario subset (default: full matrix)")
		shrinkN  = flag.Int("shrink-attempts", 800, "max differential checks the shrinker may spend (0 disables shrinking)")
		maxCyc   = flag.Uint64("max-cycles", 0, "per-scenario cycle budget (default 20M)")
		quiet    = flag.Bool("q", false, "only print failures and the final summary")
	)
	flag.Parse()

	opts := difftest.CheckOpts{MaxCycles: *maxCyc}
	if *scStr != "" {
		for _, s := range strings.Split(*scStr, ",") {
			sc, err := difftest.ParseScenario(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			opts.Scenarios = append(opts.Scenarios, sc)
		}
	}

	if *replay != "" {
		os.Exit(replayArtifact(*replay, opts))
	}

	lo, hi := uint64(0), uint64(0)
	switch {
	case *seedsStr != "":
		var err error
		if lo, hi, err = parseSeeds(*seedsStr); err != nil {
			fatal(err)
		}
	case *n > 0:
		hi = uint64(*n)
	default:
		fatal(fmt.Errorf("nothing to do: pass -n, -seeds or -replay"))
	}

	seeds := make([]uint64, 0, hi-lo)
	for s := lo; s < hi; s++ {
		seeds = append(seeds, s)
	}
	nScenarios := len(opts.Scenarios)
	if nScenarios == 0 {
		nScenarios = len(difftest.Matrix())
	}
	if !*quiet {
		fmt.Printf("difftest: %d seeds x %d scenarios, %d workers\n",
			len(seeds), nScenarios, sweep.New(*parallel).Workers())
	}

	type verdict struct {
		rep *difftest.Report
		sr  *difftest.ShrinkResult
	}
	// Each seed is independent; divergences are shrunk inside the worker
	// so the whole sweep parallelizes.
	results, err := sweep.Map(sweep.New(*parallel), seeds,
		func(seed uint64, _ int) (verdict, error) {
			k := difftest.Generate(seed, difftest.GenConfigForSeed(seed))
			rep := difftest.Check(k, opts)
			v := verdict{rep: rep}
			if rep.Divergence != nil && *shrinkN > 0 {
				if sc, err := difftest.ParseScenario(rep.Divergence.Scenario); err == nil {
					v.sr = difftest.Shrink(k, sc, opts, *shrinkN)
				}
			}
			if rep.Divergence != nil {
				sc, _ := difftest.ParseScenario(rep.Divergence.Scenario)
				art := difftest.NewArtifact(k, sc, rep.Divergence, v.sr)
				if path, werr := art.Write(*outDir); werr == nil {
					fmt.Fprintf(os.Stderr, "difftest: seed %d: %v\n  repro: %s\n", seed, rep.Divergence, path)
				} else {
					fmt.Fprintf(os.Stderr, "difftest: seed %d: %v\n  (artifact write failed: %v)\n", seed, rep.Divergence, werr)
				}
			}
			return v, nil
		})
	if err != nil {
		fatal(err)
	}

	var commits uint64
	failures := 0
	for _, v := range results {
		commits += v.rep.Commits
		if v.rep.Divergence != nil {
			failures++
		}
	}
	if !*quiet || failures > 0 {
		fmt.Printf("difftest: %d seeds, %d commits compared, %d divergences\n",
			len(seeds), commits, failures)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func replayArtifact(path string, opts difftest.CheckOpts) int {
	art, err := difftest.LoadArtifact(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "virec-difftest:", err)
		return 2
	}
	fmt.Printf("replaying seed %d under %s\n", art.Seed, art.Scenario)
	rep, err := art.Replay(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "virec-difftest:", err)
		return 2
	}
	if rep.Divergence != nil {
		fmt.Printf("reproduced: %v\n", rep.Divergence)
		return 1
	}
	fmt.Printf("clean: %d commits matched (the recorded divergence did not reproduce)\n", rep.Commits)
	return 0
}

func parseSeeds(s string) (lo, hi uint64, err error) {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		if lo, err = strconv.ParseUint(s[:i], 0, 64); err != nil {
			return 0, 0, fmt.Errorf("bad seed range %q: %v", s, err)
		}
		if hi, err = strconv.ParseUint(s[i+1:], 0, 64); err != nil {
			return 0, 0, fmt.Errorf("bad seed range %q: %v", s, err)
		}
		if hi <= lo {
			return 0, 0, fmt.Errorf("empty seed range %q", s)
		}
		return lo, hi, nil
	}
	if lo, err = strconv.ParseUint(s, 0, 64); err != nil {
		return 0, 0, fmt.Errorf("bad seed %q: %v", s, err)
	}
	return lo, lo + 1, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "virec-difftest:", err)
	os.Exit(2)
}
