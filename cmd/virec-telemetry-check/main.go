// Command virec-telemetry-check validates the machine-readable telemetry
// artifacts virec-sim and virec-experiments emit, so CI can gate on their
// structure without external JSON tooling:
//
//   - -chrome FILE: a Chrome trace_event JSON array. Every element must be
//     an object with name/ph/pid/tid, instants and metadata carry a ts or
//     args, and "X" complete events carry ts+dur.
//   - -jsonl FILE: an event-per-line trace. Every line must decode with
//     cycle/kind/core/thread fields, and cycles must be non-decreasing up
//     to one cycle of component clock skew (the dcache stamps Access-path
//     pin events with its own clock, which trails the cores by a cycle).
//   - -metrics FILE: one or more registry snapshots (a single JSON
//     document or JSONL). Every histogram must satisfy len(counts) ==
//     len(bounds)+1 and sum(counts) == count, with ascending bounds.
//   - -deltas FILE: a JSONL stream of telemetry deltas (what virec-sim
//     -metrics-every and virec-experiments -metrics-every record, and
//     what /api/v1/metrics/stream serves). The stream is replayed
//     through the fold: a head (reset) delta must come first, sequence
//     numbers must be contiguous, labels unknown to the head are
//     rejected, counters may not regress, histograms must stay
//     well-formed. A line without a "seq" key is a pulled snapshot; the
//     fold at that point must equal it exactly.
//
// Any violation prints a diagnostic and exits non-zero. Multiple flags
// may be combined; each file is validated independently.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/virec/virec/internal/telemetry"
)

func main() {
	var (
		chrome  = flag.String("chrome", "", "validate a Chrome trace_event JSON file")
		jsonl   = flag.String("jsonl", "", "validate a JSONL event trace file")
		metrics = flag.String("metrics", "", "validate a metrics snapshot file (JSON or JSONL)")
		deltas  = flag.String("deltas", "", "validate a JSONL delta stream (replay the fold, check snapshot lines)")
	)
	flag.Parse()
	if *chrome == "" && *jsonl == "" && *metrics == "" && *deltas == "" {
		fmt.Fprintln(os.Stderr, "virec-telemetry-check: nothing to check; pass -chrome, -jsonl, -metrics and/or -deltas")
		os.Exit(2)
	}

	ok := true
	if *chrome != "" {
		ok = report("chrome", *chrome, checkChrome(*chrome)) && ok
	}
	if *jsonl != "" {
		ok = report("jsonl", *jsonl, checkJSONL(*jsonl)) && ok
	}
	if *metrics != "" {
		ok = report("metrics", *metrics, checkMetrics(*metrics)) && ok
	}
	if *deltas != "" {
		ok = report("deltas", *deltas, checkDeltas(*deltas)) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

func report(kind, path string, err error) bool {
	if err != nil {
		fmt.Fprintf(os.Stderr, "virec-telemetry-check: %s %s: %v\n", kind, path, err)
		return false
	}
	fmt.Printf("virec-telemetry-check: %s %s: ok\n", kind, path)
	return true
}

// chromeEvent is the subset of the trace_event format the simulator emits.
type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Ts   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Args json.RawMessage `json:"args"`
}

func checkChrome(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var evs []chromeEvent
	if err := json.Unmarshal(data, &evs); err != nil {
		return fmt.Errorf("not a JSON array of events: %w", err)
	}
	if len(evs) == 0 {
		return fmt.Errorf("empty trace")
	}
	spans, instants, metas := 0, 0, 0
	for i, e := range evs {
		if e.Name == "" || e.Ph == "" || e.Pid == nil || e.Tid == nil {
			return fmt.Errorf("event %d: missing name/ph/pid/tid: %+v", i, e)
		}
		switch e.Ph {
		case "X":
			if e.Ts == nil || e.Dur == nil {
				return fmt.Errorf("event %d: complete event without ts+dur", i)
			}
			spans++
		case "i":
			if e.Ts == nil {
				return fmt.Errorf("event %d: instant without ts", i)
			}
			instants++
		case "M":
			if len(e.Args) == 0 {
				return fmt.Errorf("event %d: metadata without args", i)
			}
			metas++
		default:
			return fmt.Errorf("event %d: unexpected phase %q", i, e.Ph)
		}
	}
	fmt.Printf("  %d events: %d spans, %d instants, %d metadata\n", len(evs), spans, instants, metas)
	return nil
}

// jsonlEvent mirrors the fixed field set telemetry.WriteEventsJSONL emits.
type jsonlEvent struct {
	Cycle  *uint64 `json:"cycle"`
	Kind   *string `json:"kind"`
	Core   *int32  `json:"core"`
	Thread *int32  `json:"thread"`
}

func checkJSONL(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int
	var lastCycle uint64
	for sc.Scan() {
		n++
		var e jsonlEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("line %d: %w", n, err)
		}
		if e.Cycle == nil || e.Kind == nil || e.Core == nil || e.Thread == nil {
			return fmt.Errorf("line %d: missing cycle/kind/core/thread", n)
		}
		if *e.Cycle+1 < lastCycle {
			return fmt.Errorf("line %d: cycle %d after %d (beyond one cycle of clock skew)", n, *e.Cycle, lastCycle)
		}
		if *e.Cycle > lastCycle {
			lastCycle = *e.Cycle
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("empty trace")
	}
	fmt.Printf("  %d events, last cycle %d\n", n, lastCycle)
	return nil
}

// checkDeltas replays a recorded delta stream through the fold — the
// same validator the live SSE consumers use — so a recording that passes
// here is guaranteed to reconstruct the emitter's final state. Lines
// without a "seq" key are pulled snapshots interleaved in the recording
// (virec-sim writes one as its last line); the fold must match each one
// exactly. Multiple concatenated streams (virec-experiments merges one
// stream per job) are legal: each later head is a mid-stream reset the
// fold adopts wholesale.
func checkDeltas(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	var fold telemetry.Fold
	var line, nDeltas, nSnaps, nHeads int
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var probe struct {
			Seq *uint64 `json:"seq"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if probe.Seq == nil {
			// A pulled snapshot: the stream so far must fold to it.
			var s telemetry.Snapshot
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				return fmt.Errorf("line %d: snapshot: %w", line, err)
			}
			if eq, why := fold.Equal(&s); !eq {
				return fmt.Errorf("line %d: fold does not match recorded snapshot: %s", line, why)
			}
			nSnaps++
			continue
		}
		var d telemetry.Delta
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return fmt.Errorf("line %d: delta: %w", line, err)
		}
		if err := fold.Apply(&d); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		nDeltas++
		if d.Reset {
			nHeads++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if nDeltas == 0 {
		return fmt.Errorf("no deltas")
	}
	fmt.Printf("  %d deltas (%d stream head(s)), %d snapshot check(s), final cycle %d\n",
		nDeltas, nHeads, nSnaps, fold.Snap.Cycle)
	return nil
}

// snapshot mirrors telemetry.Snapshot's JSON shape.
type snapshot struct {
	Cycle      uint64             `json:"cycle"`
	Counters   map[string]uint64  `json:"counters"`
	Gauges     map[string]float64 `json:"gauges"`
	Histograms map[string]hist    `json:"histograms"`
}

type hist struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
	Min    uint64   `json:"min"`
	Max    uint64   `json:"max"`
}

func checkMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// A snapshot file is either one (possibly indented) JSON document or a
	// stream of compact documents (JSONL); a streaming decoder reads both.
	dec := json.NewDecoder(f)
	var docs int
	for dec.More() {
		var s snapshot
		if err := dec.Decode(&s); err != nil {
			return fmt.Errorf("snapshot %d: %w", docs+1, err)
		}
		docs++
		if len(s.Counters) == 0 {
			return fmt.Errorf("snapshot %d: no counters", docs)
		}
		// Validate in sorted order so the first error reported does not
		// depend on map iteration order.
		names := make([]string, 0, len(s.Histograms))
		for name := range s.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := s.Histograms[name]
			if len(h.Counts) != len(h.Bounds)+1 {
				return fmt.Errorf("snapshot %d: histogram %s: len(counts)=%d, want len(bounds)+1=%d",
					docs, name, len(h.Counts), len(h.Bounds)+1)
			}
			for i := 1; i < len(h.Bounds); i++ {
				if h.Bounds[i] <= h.Bounds[i-1] {
					return fmt.Errorf("snapshot %d: histogram %s: bounds not ascending at %d", docs, name, i)
				}
			}
			var sum uint64
			for _, c := range h.Counts {
				sum += c
			}
			if sum != h.Count {
				return fmt.Errorf("snapshot %d: histogram %s: sum(counts)=%d != count=%d",
					docs, name, sum, h.Count)
			}
			if h.Count > 0 && h.Min > h.Max {
				return fmt.Errorf("snapshot %d: histogram %s: min %d > max %d", docs, name, h.Min, h.Max)
			}
		}
	}
	if docs == 0 {
		return fmt.Errorf("no snapshots")
	}
	fmt.Printf("  %d snapshot(s)\n", docs)
	return nil
}
