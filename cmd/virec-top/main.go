// Command virec-top is the fleet dashboard for a virec-farm server: a
// terminal view of queue depth, worker occupancy, retry and quarantine
// counts, per-job progress bars and aggregate simulation throughput,
// refreshed live from the farm's SSE delta stream plus a periodic job
// listing poll.
//
// Usage:
//
//	virec-top -farm http://localhost:7741
//	virec-top -farm http://localhost:7741 -once   # one frame, no TTY control (CI)
//
// The live view folds /api/v1/metrics/stream deltas client-side (the
// same fold virec-telemetry-check -deltas validates) and reconnects with
// Last-Event-ID on any stream interruption, so a blip in connectivity
// never corrupts the displayed counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/virec/virec/internal/farm"
	"github.com/virec/virec/internal/telemetry"
)

func main() {
	var (
		farmURL  = flag.String("farm", "http://localhost:7741", "virec-farm server URL")
		once     = flag.Bool("once", false, "print a single frame and exit (no screen control)")
		interval = flag.Duration("interval", time.Second, "refresh cadence for the job listing and redraw")
		maxJobs  = flag.Int("jobs", 12, "max jobs shown in the table (active first, then most recent)")
	)
	flag.Parse()

	client := farm.NewClient(*farmURL)
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer cancel()

	if *once {
		snap, err := client.Metrics(ctx)
		if err != nil {
			fatal(err)
		}
		jobs, err := client.Jobs(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Print(render(*farmURL, snap, jobs, *maxJobs, 0))
		return
	}

	// Live mode: one goroutine folds the SSE stream (reconnecting with
	// the last seen sequence number), the main loop polls the job listing
	// and redraws. The fold is the single source of truth for counters —
	// a redraw never blocks on the network for them.
	var mu sync.Mutex
	var fold telemetry.Fold
	lastSeq := int64(-1)
	go func() {
		for ctx.Err() == nil {
			err := client.StreamDeltas(ctx, lastSeq, func(d *telemetry.Delta) error {
				mu.Lock()
				defer mu.Unlock()
				if d.Reset {
					fold = telemetry.Fold{} // server restarted or re-headed us
				}
				if err := fold.Apply(d); err != nil {
					return err
				}
				lastSeq = int64(d.Seq)
				return nil
			})
			if ctx.Err() != nil {
				return
			}
			if err != nil {
				// Protocol violation or transport error: drop the fold and
				// take a fresh head on reconnect.
				mu.Lock()
				fold = telemetry.Fold{}
				lastSeq = -1
				mu.Unlock()
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(*interval):
			}
		}
	}()

	// Cycle throughput is the derivative of the farm/sim_cycles counter
	// between redraws.
	//virec:wallclock-ok display-only rate estimation in a dashboard
	lastDraw := time.Now()
	var lastCycles uint64
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		jobs, err := client.Jobs(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fmt.Fprintf(os.Stderr, "virec-top: %v (retrying)\n", err)
		} else {
			mu.Lock()
			snap := fold.Snap
			mu.Unlock()
			if snap == nil {
				if snap, err = client.Metrics(ctx); err != nil {
					snap = nil
				}
			}
			rate := 0.0
			if snap != nil {
				cycles := snap.Counters["farm/sim_cycles"]
				//virec:wallclock-ok display-only rate estimation in a dashboard
				now := time.Now()
				if dt := now.Sub(lastDraw).Seconds(); dt > 0 && cycles >= lastCycles {
					rate = float64(cycles-lastCycles) / dt
				}
				lastCycles, lastDraw = cycles, now
			}
			// Home + clear-to-end keeps the frame flicker-free on a TTY.
			fmt.Print("\x1b[H\x1b[2J" + render(*farmURL, snap, jobs, *maxJobs, rate))
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return
		case <-ticker.C:
		}
	}
}

// render lays out one dashboard frame.
func render(url string, snap *telemetry.Snapshot, jobs []*farm.Job, maxJobs int, rate float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "virec-top — %s\n\n", url)

	c := func(name string) uint64 {
		if snap == nil {
			return 0
		}
		return snap.Counters[name]
	}
	g := func(name string) float64 {
		if snap == nil {
			return 0
		}
		return snap.Gauges[name]
	}
	fmt.Fprintf(&b, "queue %3.0f   running %3.0f   jobs %4.0f   | submitted %d   completed %d   cache hits %d\n",
		g("farm/queue_depth"), g("farm/running"), g("farm/jobs_total"),
		c("farm/submitted"), c("farm/completed"), c("farm/cache_hits"))
	fmt.Fprintf(&b, "retries %d   failed %d   quarantined %d   rejected %d   deadline abandons %d   worker restarts %d\n",
		c("farm/retries"), c("farm/failed"), c("farm/quarantined"),
		c("farm/rejected"), c("farm/deadline_abandons"), c("farm/worker_restarts"))
	fmt.Fprintf(&b, "throughput: %s sim cycles total, %s cycles/s, %d heartbeats\n\n",
		group(c("farm/sim_cycles")), group(uint64(rate)), c("farm/heartbeats"))

	// Active jobs first (running, then backoff, then pending), each group
	// most recent first, terminal jobs last.
	sort.SliceStable(jobs, func(a, b int) bool {
		ra, rb := stateRank(jobs[a].State), stateRank(jobs[b].State)
		if ra != rb {
			return ra < rb
		}
		return jobs[a].ID > jobs[b].ID
	})
	shown := jobs
	if len(shown) > maxJobs {
		shown = shown[:maxJobs]
	}
	fmt.Fprintf(&b, "%-6s %-12s %-34s %-8s %s\n", "JOB", "STATE", "SPEC", "ATTEMPT", "PROGRESS")
	for _, j := range shown {
		spec := ""
		if j.Spec != nil {
			spec = j.Spec.Summary()
		}
		if len(spec) > 34 {
			spec = spec[:31] + "..."
		}
		fmt.Fprintf(&b, "%-6d %-12s %-34s %-8d %s\n", j.ID, j.State, spec, j.Attempts, progressCell(j))
	}
	if len(jobs) > len(shown) {
		fmt.Fprintf(&b, "… %d more\n", len(jobs)-len(shown))
	}
	return b.String()
}

// stateRank orders the job table: live states first.
func stateRank(s farm.JobState) int {
	switch s {
	case farm.StateRunning:
		return 0
	case farm.StateBackoff:
		return 1
	case farm.StatePending:
		return 2
	default:
		return 3
	}
}

// progressCell renders a job's live progress as a bar when the total is
// known, a raw tick count otherwise, and the terminal outcome for
// finished jobs.
func progressCell(j *farm.Job) string {
	switch j.State {
	case farm.StateDone:
		if j.FromCache {
			return "done (cache)"
		}
		return "done"
	case farm.StateFailed, farm.StateQuarantined:
		return "✗ " + firstLine(j.Error)
	}
	p := j.Progress
	if p == nil {
		return "-"
	}
	if p.Total > 0 {
		const width = 20
		filled := p.Done * width / p.Total
		if filled > width {
			filled = width
		}
		return fmt.Sprintf("[%s%s] %d/%d %s",
			strings.Repeat("█", filled), strings.Repeat("·", width-filled),
			p.Done, p.Total, p.Unit)
	}
	if p.Cycle > 0 {
		return fmt.Sprintf("cycle %s", group(p.Cycle))
	}
	return fmt.Sprintf("%d %s", p.Done, p.Unit)
}

// group renders n with thousands separators (1234567 → "1,234,567").
func group(n uint64) string {
	s := fmt.Sprintf("%d", n)
	for i := len(s) - 3; i > 0; i -= 3 {
		s = s[:i] + "," + s[i:]
	}
	return s
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "virec-top:", err)
	os.Exit(1)
}
