// Command virec-asm assembles and disassembles programs for the
// simulator's AArch64-flavoured ISA, can run them functionally, and runs
// the ISA-level static analyzer (internal/asm/check) over them.
//
// Usage:
//
//	virec-asm file.s              # assemble, print the listing
//	virec-asm -run file.s         # assemble and interpret until HALT
//	virec-asm -workload gather    # disassemble a built-in kernel
//	virec-asm -check file.s       # assemble and statically analyze
//	virec-asm -check-workloads    # analyze every built-in kernel
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/virec/virec/internal/asm"
	"github.com/virec/virec/internal/asm/check"
	"github.com/virec/virec/internal/interp"
	"github.com/virec/virec/internal/isa"
	"github.com/virec/virec/internal/mem"
	"github.com/virec/virec/internal/workloads"
)

func main() {
	var (
		run      = flag.Bool("run", false, "interpret the program until HALT")
		workload = flag.String("workload", "", "disassemble a built-in kernel instead of reading a file")
		maxInsts = flag.Uint64("max-insts", 100_000_000, "interpreter instruction budget")
		doCheck  = flag.Bool("check", false, "statically analyze the program (branch targets, reachability, use-before-def, register pressure)")
		checkAll = flag.Bool("check-workloads", false, "statically analyze every built-in kernel and exit")
	)
	flag.Parse()

	if *checkAll {
		os.Exit(checkWorkloads())
	}

	var prog *asm.Program
	var entry []isa.Reg
	switch {
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "virec-asm: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		prog = w.Prog
		entry = w.EntryRegs(workloads.DefaultParams(0))
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "virec-asm:", err)
			os.Exit(1)
		}
		prog, err = asm.Assemble(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "virec-asm:", err)
			os.Exit(1)
		}
		prog.Name = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: virec-asm [-run] [-check] file.s | virec-asm [-check] -workload name | virec-asm -check-workloads")
		os.Exit(2)
	}

	fmt.Printf("// %s: %d instructions\n", prog.Name, prog.Len())
	fmt.Print(asm.Disassemble(prog))

	if *doCheck {
		rep := check.Analyze(prog, entry)
		printReport(rep)
		if !rep.Clean() {
			os.Exit(1)
		}
	}

	if *run {
		var ctx interp.Context
		m := mem.NewMemory()
		res := interp.Run(prog, &ctx, m, *maxInsts, nil)
		fmt.Printf("\nexecuted %d instructions (halted=%v)\n", res.Insts, res.Halted)
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if v := ctx.Get(r); v != 0 {
				fmt.Printf("  %-4s = %#x (%d)\n", r, v, v)
			}
		}
	}
}

func printReport(rep *check.Report) {
	fmt.Printf("\ncheck: %d finding(s)", len(rep.Findings))
	if rep.MaxLivePC >= 0 {
		fmt.Printf(", max register pressure %d at pc %d (%v)", rep.MaxLive, rep.MaxLivePC, rep.LiveRegs)
	}
	fmt.Println()
	for _, f := range rep.Findings {
		fmt.Printf("  %s\n", f)
	}
}

// checkWorkloads analyzes every built-in kernel with its Setup-defined
// entry registers; returns the process exit code.
func checkWorkloads() int {
	bad := 0
	for _, w := range workloads.All() {
		rep := check.Analyze(w.Prog, w.EntryRegs(workloads.DefaultParams(0)))
		status := "ok"
		if !rep.Clean() {
			status = fmt.Sprintf("%d finding(s)", len(rep.Findings))
			bad++
		}
		fmt.Printf("%-16s %3d insts  pressure %2d @ pc %-3d  %s\n",
			w.Name, w.Prog.Len(), rep.MaxLive, rep.MaxLivePC, status)
		for _, f := range rep.Findings {
			fmt.Printf("  %s\n", f)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "virec-asm: %d kernel(s) with findings\n", bad)
		return 1
	}
	return 0
}
