// Command virec-asm assembles and disassembles programs for the
// simulator's AArch64-flavoured ISA, and can run them functionally.
//
// Usage:
//
//	virec-asm file.s              # assemble, print the listing
//	virec-asm -run file.s         # assemble and interpret until HALT
//	virec-asm -workload gather    # disassemble a built-in kernel
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/virec/virec/internal/asm"
	"github.com/virec/virec/internal/interp"
	"github.com/virec/virec/internal/isa"
	"github.com/virec/virec/internal/mem"
	"github.com/virec/virec/internal/workloads"
)

func main() {
	var (
		run      = flag.Bool("run", false, "interpret the program until HALT")
		workload = flag.String("workload", "", "disassemble a built-in kernel instead of reading a file")
		maxInsts = flag.Uint64("max-insts", 100_000_000, "interpreter instruction budget")
	)
	flag.Parse()

	var prog *asm.Program
	switch {
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "virec-asm: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		prog = w.Prog
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "virec-asm:", err)
			os.Exit(1)
		}
		prog, err = asm.Assemble(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "virec-asm:", err)
			os.Exit(1)
		}
		prog.Name = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: virec-asm [-run] file.s | virec-asm -workload name")
		os.Exit(2)
	}

	fmt.Printf("// %s: %d instructions\n", prog.Name, prog.Len())
	fmt.Print(asm.Disassemble(prog))

	if *run {
		var ctx interp.Context
		m := mem.NewMemory()
		res := interp.Run(prog, &ctx, m, *maxInsts, nil)
		fmt.Printf("\nexecuted %d instructions (halted=%v)\n", res.Insts, res.Halted)
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if v := ctx.Get(r); v != 0 {
				fmt.Printf("  %-4s = %#x (%d)\n", r, v, v)
			}
		}
	}
}
