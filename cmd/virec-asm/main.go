// Command virec-asm assembles and disassembles programs for the
// simulator's AArch64-flavoured ISA, can run them functionally, and runs
// the ISA-level static analyzer (internal/asm/check) over them.
//
// Usage:
//
//	virec-asm file.s              # assemble, print the listing
//	virec-asm -run file.s         # assemble and interpret until HALT
//	virec-asm -workload gather    # disassemble a built-in kernel
//	virec-asm -check file.s       # assemble and statically analyze
//	virec-asm -check-workloads    # analyze every built-in kernel
//	virec-asm -hints file.s       # print synthesized register-management hints
//	virec-asm -hints-workloads    # annotate every built-in kernel with hints
//	virec-asm -verify-hints       # cross-check hints against interpreter traces
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/virec/virec/internal/asm"
	"github.com/virec/virec/internal/asm/check"
	"github.com/virec/virec/internal/interp"
	"github.com/virec/virec/internal/isa"
	"github.com/virec/virec/internal/mem"
	"github.com/virec/virec/internal/workloads"
)

func main() {
	var (
		run      = flag.Bool("run", false, "interpret the program until HALT")
		workload = flag.String("workload", "", "disassemble a built-in kernel instead of reading a file")
		maxInsts = flag.Uint64("max-insts", 100_000_000, "interpreter instruction budget")
		doCheck  = flag.Bool("check", false, "statically analyze the program (branch targets, reachability, use-before-def, register pressure)")
		checkAll = flag.Bool("check-workloads", false, "statically analyze every built-in kernel and exit")
		doHints  = flag.Bool("hints", false, "synthesize and print register-management hints for the program")
		hintsAll = flag.Bool("hints-workloads", false, "annotate every built-in kernel with synthesized hints and exit")
		verify   = flag.Bool("verify-hints", false, "run every built-in kernel in the interpreter and cross-check dead hints against the observed trace; exit nonzero on any unsound hint")
	)
	flag.Parse()

	if *checkAll {
		os.Exit(checkWorkloads())
	}
	if *hintsAll {
		hintsWorkloads(os.Stdout)
		return
	}
	if *verify {
		os.Exit(verifyHints(os.Stdout, *maxInsts))
	}

	var prog *asm.Program
	var entry []isa.Reg
	switch {
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "virec-asm: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		prog = w.Prog
		entry = w.EntryRegs(workloads.DefaultParams(0))
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "virec-asm:", err)
			os.Exit(1)
		}
		prog, err = asm.Assemble(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "virec-asm:", err)
			os.Exit(1)
		}
		prog.Name = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: virec-asm [-run] [-check] file.s | virec-asm [-check] -workload name | virec-asm -check-workloads")
		os.Exit(2)
	}

	fmt.Printf("// %s: %d instructions\n", prog.Name, prog.Len())
	fmt.Print(asm.Disassemble(prog))

	if *doCheck {
		rep := check.Analyze(prog, entry)
		printReport(rep)
		if !rep.Clean() {
			os.Exit(1)
		}
	}

	if *doHints {
		h := check.Synthesize(prog)
		fmt.Printf("\nhints:\n%s", h.Annotate(prog))
	}

	if *run {
		var ctx interp.Context
		m := mem.NewMemory()
		res := interp.Run(prog, &ctx, m, *maxInsts, nil)
		fmt.Printf("\nexecuted %d instructions (halted=%v)\n", res.Insts, res.Halted)
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if v := ctx.Get(r); v != 0 {
				fmt.Printf("  %-4s = %#x (%d)\n", r, v, v)
			}
		}
	}
}

func printReport(rep *check.Report) {
	fmt.Printf("\ncheck: %d finding(s)", len(rep.Findings))
	if rep.MaxLivePC >= 0 {
		fmt.Printf(", max register pressure %d at pc %d (%v)", rep.MaxLive, rep.MaxLivePC, rep.LiveRegs)
	}
	fmt.Println()
	for _, f := range rep.Findings {
		fmt.Printf("  %s\n", f)
	}
}

// checkWorkloads analyzes every built-in kernel with its Setup-defined
// entry registers; returns the process exit code.
func checkWorkloads() int {
	bad := 0
	for _, w := range workloads.All() {
		rep := check.Analyze(w.Prog, w.EntryRegs(workloads.DefaultParams(0)))
		status := "ok"
		if !rep.Clean() {
			status = fmt.Sprintf("%d finding(s)", len(rep.Findings))
			bad++
		}
		fmt.Printf("%-16s %3d insts  pressure %2d @ pc %-3d  %s\n",
			w.Name, w.Prog.Len(), rep.MaxLive, rep.MaxLivePC, status)
		for _, f := range rep.Findings {
			fmt.Printf("  %s\n", f)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "virec-asm: %d kernel(s) with findings\n", bad)
		return 1
	}
	return 0
}

// hintsWorkloads prints the synthesized hint annotation for every built-in
// kernel. The output is pinned by a golden-file test so hint drift is a
// reviewed diff, not a silent behavior change.
func hintsWorkloads(w io.Writer) {
	for _, wl := range workloads.All() {
		h := check.Synthesize(wl.Prog)
		fmt.Fprintf(w, "== %s ==\n", wl.Name)
		fmt.Fprint(w, h.Annotate(wl.Prog))
		fmt.Fprintln(w)
	}
}

// verifyHints is the CI soundness gate for the hint synthesizer: it runs
// every built-in kernel to completion in the functional interpreter,
// records the committed pc sequence, and checks each dead-register hint
// against the observed trace (a register flagged dead must never be read
// again before being overwritten). A violation means the static analysis
// produced an unsound fact; the VRMU would still be functionally correct
// (hints are timing-only) but the pass itself is broken, so we fail hard.
func verifyHints(w io.Writer, maxInsts uint64) int {
	bad := 0
	for _, wl := range workloads.All() {
		var ctx interp.Context
		m := mem.NewMemory()
		wl.Setup(m, 0, workloads.DefaultParams(0), func(r isa.Reg, v uint64) {
			ctx.Set(r, v)
		})
		var pcs []int
		res := interp.Run(wl.Prog, &ctx, m, maxInsts, func(e interp.TraceEntry) {
			pcs = append(pcs, e.PC)
		})
		if !res.Halted {
			fmt.Fprintf(w, "%-16s FAIL: did not halt within %d instructions\n", wl.Name, maxInsts)
			bad++
			continue
		}
		h := check.Synthesize(wl.Prog)
		viol := check.DeadHintViolations(wl.Prog, pcs)
		status := "sound"
		if len(viol) > 0 {
			status = fmt.Sprintf("%d UNSOUND hint(s)", len(viol))
			bad++
		}
		fmt.Fprintf(w, "%-16s %8d insts traced  %2d/%2d hinted (%d dead, %d remat, %d cold)  %s\n",
			wl.Name, res.Insts, h.Hinted, wl.Prog.Len(), h.Dead, h.Remat, h.Cold, status)
		for _, f := range viol {
			fmt.Fprintf(w, "  %s\n", f)
		}
	}
	if bad > 0 {
		fmt.Fprintf(w, "virec-asm: unsound hints in %d kernel(s)\n", bad)
		return 1
	}
	fmt.Fprintf(w, "virec-asm: all dead hints consistent with interpreter traces\n")
	return 0
}
