package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the hint golden file")

// TestHintsGolden pins the synthesized hint annotation for every shipped
// kernel. The hint byte feeds replacement policy decisions, so any change
// to the synthesizer shows up here as a reviewable diff instead of a
// silent shift in simulated performance. Regenerate with:
//
//	go test ./cmd/virec-asm -run TestHintsGolden -update
func TestHintsGolden(t *testing.T) {
	var buf bytes.Buffer
	hintsWorkloads(&buf)

	golden := filepath.Join("testdata", "hints.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("hint annotations drifted from %s (run with -update if intended)\ngot:\n%s",
			golden, buf.String())
	}
}

// TestVerifyHintsClean runs the CI soundness gate in-process: every
// shipped kernel's dead hints must be consistent with the interpreter's
// observed trace.
func TestVerifyHintsClean(t *testing.T) {
	var buf bytes.Buffer
	if code := verifyHints(&buf, 100_000_000); code != 0 {
		t.Fatalf("verifyHints exit %d:\n%s", code, buf.String())
	}
}
