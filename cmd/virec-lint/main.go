// Command virec-lint runs the simulator's custom analyzer suite
// (internal/lint) over the given packages, in the style of go vet:
//
//	go run ./cmd/virec-lint ./...
//	go run ./cmd/virec-lint -analyzers determinism,hotpath ./internal/cpu
//
// Findings print as "file:line:col: message [analyzer]" and the command
// exits 1 when any are reported. It is wired into CI next to go vet; see
// DESIGN.md for the rules each analyzer enforces and the //virec:
// directives that steer them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/virec/virec/internal/lint"
)

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *names != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, n := range strings.Split(*names, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "virec-lint: unknown analyzer %q\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset, pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "virec-lint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(fset, pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "virec-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
