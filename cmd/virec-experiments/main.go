// Command virec-experiments regenerates the tables and figures of the
// ViReC paper's evaluation.
//
// Usage:
//
//	virec-experiments -list
//	virec-experiments -exp fig12
//	virec-experiments -exp all -quick
//	virec-experiments -exp all -parallel 8
//	virec-experiments -exp fig9 -quick -farm http://localhost:7741
//
// With -farm URL each experiment is submitted to a virec-farm server as
// a job instead of running inline; the output bytes are identical either
// way (repeat submissions are served from the farm's content-addressed
// result cache).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/virec/virec/internal/experiments"
	"github.com/virec/virec/internal/farm"
	"github.com/virec/virec/internal/sim"
	"github.com/virec/virec/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment to run (or 'all')")
		list     = flag.Bool("list", false, "list available experiments")
		quick    = flag.Bool("quick", false, "smaller sweeps for a fast run")
		iters    = flag.Int("iters", 0, "override per-thread iteration count")
		format   = flag.String("format", "text", "output format: text|csv|json")
		parallel = flag.Int("parallel", 0, "sweep workers: 0 = all CPUs, 1 = serial (output is identical either way)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		metrics  = flag.String("metrics-json", "", "write the merged telemetry snapshot of every simulation run as JSON to this file ('-' = stdout)")
		every    = flag.Uint64("metrics-every", 0, "with -metrics-json: record per-simulation delta streams (every N cycles) as JSONL, merged in submission order, instead of one aggregate snapshot")
		farmURL  = flag.String("farm", "", "submit experiments to this virec-farm server instead of running inline")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			fmt.Printf("  %-10s %s\n", n, experiments.Title(n))
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "virec-experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "virec-experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "virec-experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "virec-experiments:", err)
			}
		}()
	}

	opt := experiments.Options{Quick: *quick, Iters: *iters, Parallel: *parallel}

	// With -metrics-json every simulation's telemetry snapshot is folded
	// (in submission order, so the output is deterministic) into one
	// aggregate document across all requested experiments. Adding
	// -metrics-every N records the journey instead of the destination:
	// each simulation streams a delta line every N cycles, and the
	// streams are written in submission order — so serial and parallel
	// runs produce byte-identical recordings, validated by
	// virec-telemetry-check -deltas.
	var agg *telemetry.Snapshot
	var deltaW *os.File
	var deltaEnc *json.Encoder
	if *metrics != "" {
		if *every > 0 {
			if *metrics == "-" {
				deltaEnc = json.NewEncoder(os.Stdout)
			} else {
				f, err := os.Create(*metrics)
				if err != nil {
					fmt.Fprintln(os.Stderr, "virec-experiments:", err)
					os.Exit(1)
				}
				deltaW, deltaEnc = f, json.NewEncoder(f)
			}
			opt.MetricsEvery = *every
			opt.OnDeltas = func(stream []*telemetry.Delta) {
				for _, d := range stream {
					_ = deltaEnc.Encode(d)
				}
			}
		} else {
			opt.OnResult = func(res *sim.Result) {
				if res.Metrics == nil {
					return
				}
				if agg == nil {
					agg = &telemetry.Snapshot{}
				}
				agg.Merge(res.Metrics)
			}
		}
	} else if *every > 0 {
		fmt.Fprintln(os.Stderr, "virec-experiments: -metrics-every needs -metrics-json")
		os.Exit(2)
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}

	if *farmURL != "" {
		if *metrics != "" || *every > 0 {
			fmt.Fprintln(os.Stderr, "virec-experiments: -metrics-json/-metrics-every are inline-only; with -farm, pull /api/v1/metrics or watch /api/v1/metrics/stream (virec-top) instead")
			os.Exit(2)
		}
		if err := runOnFarm(*farmURL, names, *quick, *iters, *format); err != nil {
			fmt.Fprintln(os.Stderr, "virec-experiments:", err)
			os.Exit(1)
		}
		return
	}

	for _, name := range names {
		rep, err := experiments.Run(name, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "virec-experiments: %v\n", err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Print(rep.CSV())
		case "json":
			out, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "virec-experiments:", err)
				os.Exit(1)
			}
			fmt.Println(string(out))
		default:
			fmt.Println(rep.String())
		}
	}

	switch {
	case deltaEnc != nil:
		if deltaW != nil {
			if err := deltaW.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "virec-experiments:", err)
				os.Exit(1)
			}
		}
	case *metrics != "":
		if err := writeSnapshot(*metrics, agg); err != nil {
			fmt.Fprintln(os.Stderr, "virec-experiments:", err)
			os.Exit(1)
		}
	}
}

// runOnFarm submits one job per experiment to a virec-farm server and
// prints each result as it completes, in experiment order. The bytes a
// job yields are exactly what the inline path would have printed, so
// farm and inline runs diff clean.
func runOnFarm(url string, names []string, quick bool, iters int, format string) error {
	ctx := context.Background()
	client := farm.NewClient(url)

	// Submit everything up front (the farm runs jobs concurrently),
	// then collect in submission order.
	ids := make([]uint64, len(names))
	cached := make([]bool, len(names))
	for i, name := range names {
		job, err := client.Submit(ctx, &farm.Spec{
			Kind: farm.KindExperiment,
			Experiment: &farm.ExperimentSpec{
				Name:   name,
				Quick:  quick,
				Iters:  iters,
				Format: format,
			},
		})
		if err != nil {
			return fmt.Errorf("submitting %s: %w", name, err)
		}
		ids[i] = job.ID
		// Already done at submission time: the farm served the result
		// from its content-addressed cache without executing anything.
		cached[i] = job.State == farm.StateDone
	}
	for i, id := range ids {
		out, job, err := client.WaitResult(ctx, id)
		if err != nil {
			return fmt.Errorf("experiment %s (job %d): %w", names[i], id, err)
		}
		if cached[i] || job.FromCache {
			fmt.Fprintf(os.Stderr, "virec-experiments: %s served from farm cache (%s)\n", names[i], job.Key[:12])
		}
		os.Stdout.Write(out)
	}
	return nil
}

// writeSnapshot writes the aggregate snapshot as indented JSON to path,
// with "-" selecting stdout.
func writeSnapshot(path string, snap *telemetry.Snapshot) error {
	if snap == nil {
		return fmt.Errorf("no simulation produced a telemetry snapshot")
	}
	data, err := snap.MarshalIndentJSON()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
