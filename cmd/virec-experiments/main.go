// Command virec-experiments regenerates the tables and figures of the
// ViReC paper's evaluation.
//
// Usage:
//
//	virec-experiments -list
//	virec-experiments -exp fig12
//	virec-experiments -exp all -quick
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/virec/virec/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment to run (or 'all')")
		list   = flag.Bool("list", false, "list available experiments")
		quick  = flag.Bool("quick", false, "smaller sweeps for a fast run")
		iters  = flag.Int("iters", 0, "override per-thread iteration count")
		format = flag.String("format", "text", "output format: text|csv|json")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			fmt.Printf("  %-10s %s\n", n, experiments.Title(n))
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := experiments.Options{Quick: *quick, Iters: *iters}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		rep, err := experiments.Run(name, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "virec-experiments: %v\n", err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Print(rep.CSV())
		case "json":
			out, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "virec-experiments:", err)
				os.Exit(1)
			}
			fmt.Println(string(out))
		default:
			fmt.Println(rep.String())
		}
	}
}
