// Command virec-farm is the long-running simulation service: a crash-safe
// persistent job queue with supervised workers and a content-addressed
// result cache, serving simulation, difftest and experiment jobs over
// HTTP (see internal/farm).
//
// Usage:
//
//	virec-farm -dir farm-data -addr :7741 -workers 8
//
// The data directory holds the append-only journal, the atomic
// checkpoint and the result cache; restarting against the same directory
// re-queues in-flight jobs, never re-runs completed ones, and serves
// previously computed results from cache. SIGTERM/SIGINT drain
// gracefully: admission stops, in-flight jobs finish, pending jobs are
// checkpointed for the next start. A second signal exits immediately
// (the journal makes even that safe).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/virec/virec/internal/farm"
)

func main() {
	var (
		addr        = flag.String("addr", ":7741", "HTTP listen address")
		dir         = flag.String("dir", "farm-data", "persistence root: journal, checkpoint, result cache")
		workers     = flag.Int("workers", 0, "worker count (0 = all CPUs)")
		queueCap    = flag.Int("queue-cap", 1024, "max live jobs before submissions get 429")
		maxRetries  = flag.Int("max-retries", 3, "re-executions per failing job before it is marked failed")
		backoff     = flag.Duration("backoff", 250*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
		backoffMax  = flag.Duration("backoff-max", 15*time.Second, "retry backoff cap")
		deadline    = flag.Duration("deadline", 15*time.Minute, "per-attempt job deadline (0 disables)")
		drainWait   = flag.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight jobs on SIGTERM")
		codeVersion = flag.String("code-version", farm.CodeVersion, "cache-key code version")
		noSync      = flag.Bool("no-sync", false, "skip fsync on journal appends (faster, loses power-failure durability)")
		streamEvery = flag.Duration("stream-every", time.Second, "SSE delta sampling cadence for /api/v1/metrics/stream")
		heartbeat   = flag.Uint64("heartbeat-every", 1<<16, "cycle cadence of worker sim heartbeats feeding farm metrics (0 disables)")
		enablePprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	f, err := farm.Open(farm.Options{
		Dir:            *dir,
		Workers:        *workers,
		QueueCap:       *queueCap,
		MaxRetries:     *maxRetries,
		BackoffBase:    *backoff,
		BackoffMax:     *backoffMax,
		JobDeadline:    *deadline,
		CodeVersion:    *codeVersion,
		SyncJournal:    !*noSync,
		HeartbeatEvery: *heartbeat,
	})
	if err != nil {
		fatal(err)
	}
	f.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: farm.NewServerWith(f, farm.ServerOptions{
		StreamInterval: *streamEvery,
		EnablePprof:    *enablePprof,
	})}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "virec-farm: serving on %s, data in %s (queue depth %d recovered)\n",
		ln.Addr(), *dir, f.QueueDepth())

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		fatal(err)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "virec-farm: %v: draining (in-flight jobs finish, pending jobs checkpoint)\n", sig)
	}

	// Second signal: abandon the drain. The journal re-queues whatever
	// was in flight on the next start.
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "virec-farm: second signal, exiting immediately")
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	srv.Shutdown(ctx)
	if err := f.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "virec-farm:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "virec-farm: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "virec-farm:", err)
	os.Exit(1)
}
