module github.com/virec/virec

go 1.24
