// Package virec is a from-scratch reproduction of "ViReC: The Virtual
// Register Context Architecture for Efficient Near-Memory Multithreading"
// (Barondeau, Jiang, Beard, Gerstlauer — ICPP 2025).
//
// The module contains a deterministic cycle-level simulator for
// coarse-grain multithreaded near-memory processors whose register file
// is virtualized and used as a cache of partial thread contexts (the
// ViReC architecture), together with the banked, software-switched and
// prefetching baselines the paper compares against, the memory-intensive
// benchmark kernels it evaluates on, an analytical area/delay model, and
// an experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// Start with the README, the examples/ directory, or:
//
//	go run ./cmd/virec-sim -list
//	go run ./cmd/virec-experiments -list
package virec
